// mcfigures regenerates the paper's evaluation figures and tables as
// tab-separated text, one file per figure (like the artifact's
// results/figureX.txt) or to stdout.
//
// Figures decompose into independent deterministic jobs (one per sweep
// datapoint where possible) that run on a worker pool; results are merged
// in submission order, so the output is byte-identical for every -jobs
// value, including the fully serial -jobs 1.
//
// Usage:
//
//	mcfigures                      # every figure, to stdout
//	mcfigures -fig 14              # one figure
//	mcfigures -fig 14,table1       # a comma-separated subset
//	mcfigures -quick               # reduced sizes/ops (minutes, same shapes)
//	mcfigures -out results/        # write results/figureX.txt files
//	mcfigures -jobs 8              # worker pool size (default: NumCPU)
//	mcfigures -list                # list available figures
//	mcfigures -trace t.json        # Chrome/Perfetto transaction trace
//	mcfigures -timeline tl.csv     # cycle-windowed metric timeline (.csv/.json)
//	mcfigures -config spec.json    # declarative machine spec for every figure
//	mcfigures -set Channels=4      # spec field overrides (repeatable)
//
// Every figure draws its machine from a config.MachineSpec: the built-in
// default (the paper's Table I machine), patched by the -config file and
// then by -set Path=value overrides, exactly as in mcsim.
//
// -trace enables the transaction tracer in every job's machines and merges
// the flight recorders into one Chrome trace-event JSON document in job
// submission order, so the trace too is byte-identical at any -jobs value.
// -trace-sample N records every Nth memory operation (1 = all).
//
// -timeline enables cycle-windowed metric sampling in every job's machines
// and writes the merged timeline (recorders in job submission order) as CSV
// or JSON by file suffix; -timeline-window overrides the window size. When
// -trace and -timeline are both set, the trace document also carries the
// timeline as Perfetto counter tracks. Both exports are byte-identical at
// any -jobs value.
//
// -faults injects a deterministic fault schedule (a bare seed like 0xC0FFEE
// or a schedule JSON file) into every job's machines; because each job binds
// its own fault plane, the injected run stays byte-identical at any -jobs
// value. With -out set, the resolved schedule is written to
// <out>/fault_schedule.json so a chaos run can be replayed exactly.
// -invariants enables the runtime correctness oracles in every job;
// violations fail the job (reported per job, exit non-zero).
// -cycle-budget N fails any job whose simulation exceeds N cycles — the
// livelock backstop for chaos runs.
//
// -fig resilience sweeps fault-storm intensity over the serving fleet with
// the full fault-tolerance plane on (fleet-level crashes, brownouts, and
// probe loss derived from the schedule seed), comparing baseline and mc2
// goodput, tail latency, and unavailability under the identical storm. A
// -faults schedule supplies the storm (replayable from its emitted
// fault_schedule.json); without one the figure uses its own fixed seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"mcsquare/internal/cliutil"
	"mcsquare/internal/figures"
	"mcsquare/internal/metrics"
	"mcsquare/internal/runner"
	"mcsquare/internal/stats"
	"mcsquare/internal/timeline"
	"mcsquare/internal/txtrace"
)

// figurePlan tracks one figure's slice of the global job list.
type figurePlan struct {
	gen   figures.Generator
	set   figures.JobSet
	first int // index of the figure's first job in the global list
}

func main() {
	var sets cliutil.StringList
	var (
		cfgPath  = flag.String("config", "", "machine spec JSON file (see examples/configs); figures start from it")
		fig      = flag.String("fig", "", "comma-separated figure ids (e.g. 10,16,table1); empty = all")
		quick    = flag.Bool("quick", false, "reduced problem sizes (same shapes, much faster)")
		out      = flag.String("out", "", "directory for figureX.txt files (default: stdout)")
		jobs     = flag.Int("jobs", runtime.NumCPU(), "worker pool size; 1 reproduces a serial run")
		list     = flag.Bool("list", false, "list available figures and exit")
		statsOut = flag.String("stats", "", "write run-wide aggregated metrics (merged over all jobs) as JSON to this file; - for stdout")
		traceOut = flag.String("trace", "", "enable transaction tracing and write a Chrome/Perfetto trace-event JSON to this file; - for stdout")
		traceN   = flag.Int("trace-sample", 1, "with -trace: record every Nth memory operation (1 = all)")
		tlOut    = flag.String("timeline", "", "enable cycle-windowed metric sampling and write the merged timeline to this file (.csv or JSON); - for stdout")
		tlWin    = flag.Uint64("timeline-window", 0, "with -timeline: sampling window in cycles (0 = spec's Timeline block, default 100000)")
		faults   = flag.String("faults", "", "inject a deterministic fault schedule into every job: a seed (e.g. 0xC0FFEE) or a schedule JSON file")
		invar    = flag.Bool("invariants", false, "enable runtime invariant oracles in every job; violations fail the job")
		budget   = flag.Uint64("cycle-budget", 0, "fail any job whose simulation exceeds this many cycles (0 = unbounded)")
	)
	flag.Var(&sets, "set", "override one spec field (Path=value, e.g. -set Channels=4); repeatable, applied after -config")
	flag.Parse()

	if *list {
		for _, g := range figures.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	gens := figures.All()
	if *fig != "" {
		gens = gens[:0]
		for _, id := range strings.Split(*fig, ",") {
			g, ok := figures.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "mcfigures: unknown figure %q (use -list)\n", id)
				os.Exit(1)
			}
			gens = append(gens, g)
		}
	}

	spec, err := cliutil.LoadSpec(*cfgPath, sets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
		os.Exit(1)
	}
	opt := figures.Options{Quick: *quick, Spec: spec}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
			os.Exit(1)
		}
	}

	fsched, err := cliutil.ParseFaults(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfigures: -faults: %v\n", err)
		os.Exit(1)
	}
	if fsched != nil {
		if *out != "" {
			// The reproduction artifact: replaying this file (or the bare
			// seed) regenerates the exact same fault sequence.
			p := filepath.Join(*out, "fault_schedule.json")
			if err := fsched.WriteJSON(p); err != nil {
				fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", p)
		}
	}
	icfg := cliutil.Invariants(*invar)

	// Validate the trace and timeline destinations before any job runs: an
	// unwritable path should fail in milliseconds, not after the whole sweep.
	traceFile, err := cliutil.CreateOutput(*traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfigures: -trace: %v\n", err)
		os.Exit(1)
	}
	tlFile, err := cliutil.CreateOutput(*tlOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcfigures: -timeline: %v\n", err)
		os.Exit(1)
	}
	tlcfg := cliutil.TimelineConfig(spec, *tlOut, *tlWin, false)

	// Decompose every figure into jobs up front, then run the whole batch
	// on one pool: datapoints of different figures overlap freely.
	var (
		plans []figurePlan
		all   []runner.Job
	)
	for _, g := range gens {
		set := g.Jobs(opt)
		plans = append(plans, figurePlan{gen: g, set: set, first: len(all)})
		all = append(all, set.Jobs...)
	}

	start := time.Now()
	results := runner.Run(runner.Config{
		Workers:     *jobs,
		Options:     runner.Options{Quick: *quick},
		Progress:    os.Stderr,
		Trace:       txtrace.Config{Enabled: *traceOut != "", SampleEvery: *traceN},
		Timeline:    tlcfg,
		Faults:      fsched,
		Invariants:  icfg,
		CycleBudget: *budget,
	}, all)

	// Per-job diagnostics from the hardened runner: invariant violations in
	// deterministic order, and jobs that only succeeded on the
	// infrastructure retry.
	for _, r := range results {
		for _, v := range r.Violations {
			fmt.Fprintf(os.Stderr, "mcfigures: %s: %s\n", r.ID, v)
		}
		if r.Attempts > 1 && r.Err == nil {
			fmt.Fprintf(os.Stderr, "mcfigures: %s: succeeded on retry %d\n", r.ID, r.Attempts)
		}
	}

	// Assemble and emit figures in submission order. Failures (a panicking
	// job, an unwritable file) are collected, not fatal: the remaining
	// figures still complete and the process exits non-zero at the end.
	var errs []error
	for _, pl := range plans {
		parts := make([][]*stats.Table, len(pl.set.Jobs))
		var wall time.Duration
		failed := false
		for i := range pl.set.Jobs {
			r := results[pl.first+i]
			wall += r.Metrics.Wall
			if r.Err != nil {
				errs = append(errs, r.Err)
				failed = true
			}
			parts[i] = r.Tables
		}
		if failed {
			fmt.Fprintf(os.Stderr, "mcfigures: figure %s failed; no output written\n", pl.gen.ID)
			continue
		}
		if err := emit(pl, parts, *out, wall); err != nil {
			errs = append(errs, err)
		}
	}

	// Aggregate the per-job snapshots the runner collected. Each job's
	// snapshot covers exactly the machines that job built, so the merged
	// total (including sim.cycles) is exact at any worker count.
	agg := metrics.NewSnapshot()
	for _, r := range results {
		if r.Metrics.Snapshot != nil {
			agg.Merge(r.Metrics.Snapshot)
		}
	}
	if *statsOut != "" {
		if err := cliutil.WriteStats(*statsOut, agg); err != nil {
			errs = append(errs, err)
		}
	}
	// Tracers and timeline recorders concatenated in job submission order,
	// machines in construction order within a job: deterministic at any
	// -jobs value. When both planes ran, each machine's tracer and recorder
	// land at the same index, so the merged Perfetto export shares pids.
	var recs []*timeline.Recorder
	if tlcfg.Enabled {
		for _, r := range results {
			recs = append(recs, r.Timeline...)
		}
	}
	if traceFile != nil {
		var tracers []*txtrace.Tracer
		for _, r := range results {
			tracers = append(tracers, r.Trace...)
		}
		if err := exportTrace(traceFile, *traceOut, tracers, recs); err != nil {
			errs = append(errs, err)
		}
	}
	if tlFile != nil {
		if err := timeline.Write(tlFile, *tlOut, recs); err != nil {
			errs = append(errs, fmt.Errorf("-timeline %s: %w", *tlOut, err))
		} else if err := cliutil.CloseOutput(tlFile); err != nil {
			errs = append(errs, fmt.Errorf("-timeline %s: %w", *tlOut, err))
		}
	}
	cycles := agg.Counter("sim.cycles")
	workers := *jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(all) {
		workers = len(all)
	}
	fmt.Fprintf(os.Stderr, "# %d figure(s), %d job(s) on %d worker(s): %s wall, %.0f Mcycles simulated\n",
		len(plans), len(all), workers, time.Since(start).Round(time.Millisecond), float64(cycles)/1e6)

	if len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
		}
		var failed int
		for _, r := range results {
			if r.Err != nil {
				failed++
			}
		}
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "mcfigures: %d of %d job(s) failed; figures whose jobs all succeeded were still written\n",
				failed, len(all))
		}
		os.Exit(1)
	}
}

// exportTrace writes the merged trace document and closes the file. With
// timeline recorders present the document also carries their counter tracks.
func exportTrace(f *os.File, path string, tracers []*txtrace.Tracer, recs []*timeline.Recorder) error {
	var err error
	if len(recs) > 0 {
		err = timeline.ExportPerfetto(f, tracers, recs)
	} else {
		err = txtrace.Export(f, tracers)
	}
	if err != nil {
		if f != os.Stdout {
			f.Close()
		}
		return fmt.Errorf("-trace %s: %w", path, err)
	}
	if f == os.Stdout {
		return nil
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("-trace %s: %w", path, err)
	}
	return nil
}

// emit merges one figure's parts and writes it to stdout or its file.
func emit(pl figurePlan, parts [][]*stats.Table, out string, wall time.Duration) error {
	tables := pl.set.Merge(parts)
	elapsed := wall.Round(time.Millisecond)
	if out == "" {
		for _, tb := range tables {
			fmt.Println(tb.String())
		}
		fmt.Fprintf(os.Stderr, "# figure %s done in %s\n\n", pl.gen.ID, elapsed)
		return nil
	}
	name := filepath.Join(out, "figure"+pl.gen.ID+".txt")
	f, err := os.Create(name)
	if err != nil {
		return err
	}
	for _, tb := range tables {
		if _, err := tb.WriteTo(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintln(f)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", name, elapsed)
	return nil
}
