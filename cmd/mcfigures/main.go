// mcfigures regenerates the paper's evaluation figures and tables as
// tab-separated text, one file per figure (like the artifact's
// results/figureX.txt) or to stdout.
//
// Usage:
//
//	mcfigures                      # every figure, to stdout
//	mcfigures -fig 14              # one figure
//	mcfigures -quick               # reduced sizes/ops (minutes, same shapes)
//	mcfigures -out results/        # write results/figureX.txt files
//	mcfigures -list                # list available figures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mcsquare/internal/figures"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure id to run (e.g. 10, 16, table1); empty = all")
		quick = flag.Bool("quick", false, "reduced problem sizes (same shapes, much faster)")
		out   = flag.String("out", "", "directory for figureX.txt files (default: stdout)")
		list  = flag.Bool("list", false, "list available figures and exit")
	)
	flag.Parse()

	if *list {
		for _, g := range figures.All() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	gens := figures.All()
	if *fig != "" {
		g, ok := figures.ByID(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "mcfigures: unknown figure %q (use -list)\n", *fig)
			os.Exit(1)
		}
		gens = []figures.Generator{g}
	}

	opt := figures.Options{Quick: *quick}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
			os.Exit(1)
		}
	}

	for _, g := range gens {
		start := time.Now()
		tables := g.Run(opt)
		elapsed := time.Since(start).Round(time.Millisecond)
		if *out == "" {
			for _, tb := range tables {
				fmt.Println(tb.String())
			}
			fmt.Fprintf(os.Stderr, "# figure %s done in %s\n\n", g.ID, elapsed)
			continue
		}
		name := filepath.Join(*out, "figure"+g.ID+".txt")
		f, err := os.Create(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
			os.Exit(1)
		}
		for _, tb := range tables {
			if _, err := tb.WriteTo(f); err != nil {
				fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintln(f)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "mcfigures: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%s)\n", name, elapsed)
	}
}
