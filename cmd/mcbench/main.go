// Command mcbench runs the repository's performance harness: engine
// microbenchmarks plus a fixed figure-workload suite, emitting a
// BENCH_sim.json report (ns/op, allocs/op, events/sec, wall-clock).
//
//	mcbench                     # full run, writes BENCH_sim.json
//	mcbench -quick              # quick-scale workloads (CI smoke)
//	mcbench -only 'engine/'     # filter by regexp
//	mcbench -micro / -workloads # run only one half
//	mcbench -baseline old.json  # print deltas against a recorded run
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"mcsquare/internal/bench"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_sim.json", "output JSON path (empty to skip)")
		quick     = flag.Bool("quick", false, "run workloads at quick scale")
		only      = flag.String("only", "", "regexp filter on benchmark names")
		microOnly = flag.Bool("micro", false, "run only the engine microbenchmarks")
		wlOnly    = flag.Bool("workloads", false, "run only the figure-workload suite")
		baseline  = flag.String("baseline", "", "compare against a previously recorded BENCH_sim.json")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	var filter *regexp.Regexp
	if *only != "" {
		re, err := regexp.Compile(*only)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: bad -only regexp: %v\n", err)
			os.Exit(2)
		}
		filter = re
	}

	var results []bench.Result
	if !*wlOnly {
		fmt.Println("# engine microbenchmarks")
		results = append(results, bench.EngineMicro(filter, os.Stdout)...)
	}
	if !*microOnly {
		fmt.Println("# figure-workload suite")
		results = append(results, bench.Workloads(*quick, filter, os.Stdout)...)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "mcbench: no benchmarks matched")
		os.Exit(1)
	}

	report := bench.NewReport(*quick, results)
	if *out != "" {
		if err := bench.WriteJSON(*out, report); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d results)\n", *out, len(results))
	}

	if *baseline != "" {
		base, err := bench.ReadJSON(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: read baseline: %v\n", err)
			os.Exit(1)
		}
		printDeltas(base, report)
	}
}

// printDeltas reports per-benchmark changes versus a recorded baseline.
func printDeltas(base, cur *bench.Report) {
	byName := map[string]bench.Result{}
	for _, r := range base.Results {
		byName[r.Name] = r
	}
	fmt.Printf("# vs baseline (%s/%s, %s)\n", base.GOOS, base.GOARCH, base.GoVersion)
	for _, r := range cur.Results {
		b, ok := byName[r.Name]
		if !ok {
			fmt.Printf("%-28s (new)\n", r.Name)
			continue
		}
		fmt.Printf("%-28s ns/op %+7.1f%%  allocs/op %+7.1f%%\n",
			r.Name, pct(r.NsPerOp, b.NsPerOp), pct(r.AllocsPerOp, b.AllocsPerOp))
	}
}

func pct(cur, base float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 100
	}
	return 100 * (cur - base) / base
}
